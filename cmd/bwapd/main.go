// bwapd serves a simulated fleet of NUMA machines over HTTP: jobs are
// submitted as workload specs, routed to a shard (-routing), admitted onto
// a machine with nodes chosen by the admission policy (-admission), placed
// by the selected placement policy (BWAP placements come from the
// single-flight tuning cache, so repeat jobs skip re-profiling), and
// advanced through simulated time by a background clock decoupled from wall
// time. With -shards > 1 the shards advance concurrently — under a per-tick
// barrier with -engine 1 (the frozen reference), or free-running through
// conservative-lookahead windows with -engine 2 — the daemon's multi-core
// scaling axis; the event log stays bit-identical for a given seed and
// engine regardless of the shard and worker counts. See the fleet section
// and §12 of DESIGN.md for the event model, the replayable JSONL log
// format and the engine-version policy.
//
// The tuning cache is durable: -cache-file loads a snapshot on boot (warm
// start — repeated workload signatures skip re-profiling across restarts)
// and persists it on SIGINT/SIGTERM; -cache-max-entries adds an LRU bound.
// With -replay the daemon does not serve at all: it reads a recorded JSONL
// event log, resubmits the stream at its recorded timestamps against a
// fresh fleet (warmed from -cache-file when given), prints the cache
// economics and exits.
//
// Usage:
//
//	bwapd                                   # 2× Machine B fleet on :8080
//	bwapd -machines 8 -machine A -policy bwap -sim-rate 500
//	bwapd -machines 8 -shards 4 -shard-workers 4   # multi-core tick advance
//	bwapd -shards 4 -engine 2               # windowed (lookahead) advance
//	bwapd -routing hash-affinity -admission best-bandwidth
//	bwapd -log fleet-events.jsonl           # mirror the event log to disk
//	bwapd -cache-file tuning.json           # warm-startable tuning cache
//	bwapd -replay fleet-events.jsonl -cache-file tuning.json
//	bwapd -fault-plan chaos.json            # deterministic crash/drain schedule
//	bwapd -span-log spans.json              # per-job lifecycle spans (Perfetto)
//	bwapd -obs=false                        # disable telemetry entirely
//
// Machines have a lifecycle: a -fault-plan file (see fleet.FaultPlan)
// schedules deterministic crashes, drains, recoveries and fleet growth,
// and the /drain and /recover endpoints do the same interactively.
// Drained machines evacuate their jobs gracefully (progress preserved);
// crashed machines kill them, and the jobs retry with capped exponential
// backoff up to -max-retries before failing terminally.
//
// Telemetry is on by default: an observer consumes the fleet's event
// records into sim-time counters, histograms and a windowed timeline,
// served as a Prometheus text exposition on /metrics and as JSON on
// /timeline?window=W. The observer never touches the event log — enabling
// it cannot change the log by a byte. -span-log additionally streams
// per-job lifecycle spans (queued → running → retry-wait) as Chrome
// trace-event JSON that chrome://tracing and Perfetto open directly.
// Diagnostics go to stderr as structured log/slog lines; -log-level sets
// the threshold.
//
// Endpoints:
//
//	POST /submit   {"workload":"SC","workers":2,"work_scale":0.05,"count":3}
//	GET  /status?id=1
//	GET  /jobs
//	GET  /fleet
//	GET  /shards
//	GET  /machines
//	POST /drain?machine=0
//	POST /recover?machine=0
//	GET  /log
//	GET  /metrics
//	GET  /timeline?window=10
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	machines := flag.Int("machines", 2, "fleet size")
	shards := flag.Int("shards", 1, "shard count (per-shard event loops advanced in parallel)")
	shardWorkers := flag.Int("shard-workers", 0, "goroutines advancing shards (0 = min(shards, GOMAXPROCS))")
	engine := flag.Int("engine", 0, "advance engine: 1 = per-tick barrier (reference), 2 = conservative-lookahead windows (0 = BWAP_ENGINE env, else 1)")
	routing := flag.String("routing", fleet.RouteLeastLoaded, "job routing tier: least-loaded, hash-affinity, round-robin")
	admission := flag.String("admission", fleet.AdmitMostFree, "node-selection policy: most-free, best-bandwidth, anti-affinity")
	machine := flag.String("machine", "B", "machine model: A (8-node Opteron), B (4-node Xeon)")
	policy := flag.String("policy", fleet.PolicyBWAP, "placement policy: bwap, first-touch, uniform-all, uniform-workers")
	seed := flag.Uint64("seed", 1, "deterministic seed for engines, probes and arrival noise")
	simRate := flag.Float64("sim-rate", 100, "simulated seconds advanced per wall second")
	probeScale := flag.Float64("probe-scale", fleet.DefaultProbeWorkScale, "tuning-probe work fraction")
	probeWorkers := flag.Int("probe-workers", 0, "speculative probe pool width (0 = GOMAXPROCS, negative = no prefetching; wall-clock only, never changes a log byte)")
	logRetention := flag.Int("log-retention", 0, "in-memory event-log mirror: 0 = full, n > 0 = most recent n records, negative = disabled (-log still streams everything)")
	retune := flag.Float64("retune-delay", 0.5, "simulated seconds after churn before co-located jobs are re-tuned (negative disables)")
	logPath := flag.String("log", "", "mirror the JSONL event log to this file")
	cacheFile := flag.String("cache-file", "", "tuning-cache snapshot: loaded on boot if present, saved on shutdown")
	cacheMax := flag.Int("cache-max-entries", 0, "LRU bound on cached placements (0 = unbounded)")
	maxQueue := flag.Int("max-queue", 0, "reject submissions once this many jobs wait for admission (0 = unbounded)")
	faultPlan := flag.String("fault-plan", "", "JSON FaultPlan injecting deterministic crashes/drains/recoveries/machine-adds")
	maxRetries := flag.Int("max-retries", 3, "per-job retry budget for crash-killed jobs (negative = no retries)")
	replayPath := flag.String("replay", "", "replay a recorded JSONL event log instead of serving, then exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for in-situ profiling of the fleet hot paths")
	obsOn := flag.Bool("obs", true, "attach the sim-time telemetry observer (/metrics, /timeline)")
	obsWindow := flag.Float64("obs-window", 1, "timeline base window in simulated seconds")
	spanLog := flag.String("span-log", "", "write per-job lifecycle spans as Chrome trace-event JSON to this file (needs -obs)")
	logLevel := flag.String("log-level", "info", "structured-log threshold on stderr: debug, info, warn, error")
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bwapd: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)
	// Output flushers, reassigned as each sink opens (and idempotent, so
	// the normal and fatal exit paths may both run them). fatal flushes
	// before exiting: a failure after hours of serving must still leave a
	// valid span log and a synced event log behind.
	closeSpans := func() {}
	syncEventLog := func() {}
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		closeSpans()
		syncEventLog()
		os.Exit(1)
	}

	if *pprofAddr != "" {
		// A separate listener (and the default mux, where the pprof import
		// registers itself) keeps profiling off the public API surface. It
		// covers -replay runs too, so recorded streams can be profiled.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
		logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", *pprofAddr))
	}

	var newMachine func(int) *topology.Machine
	switch *machine {
	case "A", "a":
		newMachine = func(int) *topology.Machine { return topology.MachineA() }
	case "B", "b":
		newMachine = func(int) *topology.Machine { return topology.MachineB() }
	default:
		fmt.Fprintf(os.Stderr, "bwapd: unknown machine model %q\n", *machine)
		os.Exit(2)
	}

	cacheOpts := []fleet.TuningCacheOption{fleet.ProbeWorkers(*probeWorkers)}
	if *cacheMax > 0 {
		cacheOpts = append(cacheOpts, fleet.CacheMaxEntries(*cacheMax))
	}
	cache := fleet.NewTuningCache(sim.Config{Seed: *seed}, *probeScale, *seed, cacheOpts...)
	if *cacheFile != "" {
		switch n, err := cache.LoadInto(*cacheFile); {
		case err == nil:
			logger.Info("warm start: restored cached placements", "entries", n, "file", *cacheFile)
		case os.IsNotExist(err):
			logger.Info("cold start: snapshot will be written on shutdown", "file", *cacheFile)
		case errors.Is(err, fleet.ErrBadSnapshot):
			// A corrupt or stale-format snapshot is recoverable: the daemon
			// boots cold and overwrites the bad file on shutdown. Only real
			// I/O problems (unreadable file, permission) abort the boot.
			logger.Warn("ignoring unusable cache snapshot; booting cold", "file", *cacheFile, "err", err)
		default:
			fatal(err)
		}
	}

	var faults *fleet.FaultPlan
	if *faultPlan != "" {
		var err error
		if faults, err = fleet.LoadFaultPlan(*faultPlan); err != nil {
			fatal(err)
		}
	}
	if *maxRetries == 0 {
		*maxRetries = -1 // flag 0 means "no retries"; Config 0 means default
	}

	cfg := fleet.Config{
		Machines:       *machines,
		Shards:         *shards,
		Workers:        *shardWorkers,
		EngineVersion:  *engine,
		Routing:        *routing,
		Admission:      *admission,
		NewMachine:     newMachine,
		SimCfg:         sim.Config{Seed: *seed},
		Policy:         *policy,
		RetuneDelay:    *retune,
		MaxQueue:       *maxQueue,
		Faults:         faults,
		MaxRetries:     *maxRetries,
		Seed:           *seed,
		ProbeWorkScale: *probeScale,
		ProbeWorkers:   *probeWorkers,
		LogRetention:   *logRetention,
		Cache:          cache,
	}

	// Telemetry applies to serve and replay runs alike. The observer only
	// consumes records, so attaching it never changes the event log.
	var spanFile *os.File
	if *obsOn {
		ocfg := fleet.ObserverConfig{Window: *obsWindow}
		if *spanLog != "" {
			f, err := os.Create(*spanLog)
			if err != nil {
				fatal(err)
			}
			spanFile = f
			ocfg.SpanW = f
		}
		cfg.Obs = fleet.NewObserver(ocfg)
	} else if *spanLog != "" {
		logger.Warn("-span-log ignored without -obs")
	}
	spansClosed := false
	closeSpans = func() {
		if spansClosed || cfg.Obs == nil {
			return
		}
		spansClosed = true
		if err := cfg.Obs.CloseSpans(); err != nil {
			logger.Warn("span log close failed", "err", err)
		}
		if spanFile != nil {
			// Sync before Close: the terminating "]" CloseSpans just wrote
			// must hit the disk, or a crash right after exit leaves a span
			// file that is not valid JSON.
			if err := spanFile.Sync(); err != nil {
				logger.Warn("span log sync failed", "err", err)
			}
			spanFile.Close() //nolint:errcheck // synced and reported above
			logger.Info("span log written", "file", *spanLog)
		}
	}

	// The replay input is read before -log opens anything, so -log pointing
	// at the same file (under any alias) can never truncate it unread.
	var replayData []byte
	if *replayPath != "" {
		var err error
		if replayData, err = os.ReadFile(*replayPath); err != nil {
			fatal(err)
		}
	}

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.LogW = f
		syncEventLog = func() {
			if err := f.Sync(); err != nil {
				logger.Warn("event log sync failed", "err", err)
			}
		}
	}

	if *replayPath != "" {
		// -log applies here too: the replayed run regenerates its own
		// event log, mirrored like the serve path's.
		err := replay(cfg, *replayPath, replayData, *cacheFile)
		closeSpans()
		if err != nil {
			fatal(err)
		}
		return
	}

	fl, err := fleet.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv := fleet.NewServer(fl)
	srv.SimRate = *simRate
	srv.Log = logger
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Bounded drain: in-flight requests (a probe mid-run) get a grace
		// window, but a stalled client must not hold up the shutdown path
		// the cache save depends on.
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelDrain()
		httpSrv.Shutdown(drainCtx) //nolint:errcheck // exiting anyway
	}()

	fmt.Printf("bwapd: %d× machine %s fleet (%d shards, engine v%d), policy %s, routing %s, admission %s, listening on %s\n",
		*machines, *machine, *shards, fl.Stats().EngineVersion, *policy, *routing, *admission, *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Tear the driver down before fatal flushes the span log: the clock
		// goroutine must not append spans behind the terminated array.
		cancel()
		<-drained
		srv.Stop()
		fatal(err)
	}
	// ListenAndServe returns the instant Shutdown is called; wait for the
	// drain to finish so the snapshot includes entries from requests that
	// were still in flight at the signal.
	cancel()
	<-drained
	srv.Stop()
	closeSpans()
	if *cacheFile != "" {
		if err := cache.Save(*cacheFile); err != nil {
			fatal(err)
		}
		logger.Info("saved cached placements", "entries", cache.Stats().Entries, "file", *cacheFile)
	}
}

// replay runs a recorded event log (already read into data) through a
// fresh fleet at its recorded timestamps — the daemon's own logs as input
// streams. With a cache file the fleet starts warm and repeated signatures
// run zero probes; the updated cache is saved back afterwards.
func replay(cfg fleet.Config, logPath string, data []byte, cacheFile string) error {
	streams, err := fleet.ReadTrace(data, nil)
	if err != nil {
		return err
	}
	jobs := 0
	for _, s := range streams {
		jobs += len(s.Arrival.Trace)
	}
	fl, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	if err := fl.SubmitStream(streams); err != nil {
		return err
	}
	stats, err := fl.Run()
	if err != nil {
		return err
	}
	cs := fl.Cache().Stats()
	fmt.Printf("bwapd: replayed %d jobs (%d classes) from %s\n", jobs, len(streams), logPath)
	fmt.Printf("bwapd: mean turnaround %.1fs, mean wait %.1fs, utilization %.1f%%\n",
		stats.MeanTurnaround, stats.MeanWait, 100*stats.Utilization)
	if o := fl.Observer(); o != nil && o.Turnaround().Count() > 0 {
		turn, wait := o.Turnaround(), o.QueueWait()
		fmt.Printf("bwapd: turnaround p50 %.1fs p99 %.1fs, queue wait p50 %.1fs p99 %.1fs\n",
			turn.Quantile(0.5), turn.Quantile(0.99), wait.Quantile(0.5), wait.Quantile(0.99))
	}
	fmt.Printf("bwapd: cache — hits %d, probes %d, restored %d, evictions %d, entries %d\n",
		cs.Hits, cs.Misses, cs.Restored, cs.Evictions, cs.Entries)
	if cacheFile != "" {
		if err := fl.Cache().Save(cacheFile); err != nil {
			return err
		}
		fmt.Printf("bwapd: saved %d cached placements to %s\n", fl.Cache().Stats().Entries, cacheFile)
	}
	return nil
}
