// bwapd serves a simulated fleet of NUMA machines over HTTP: jobs are
// submitted as workload specs, routed to a shard (-routing), admitted onto
// a machine with nodes chosen by the admission policy (-admission), placed
// by the selected placement policy (BWAP placements come from the
// single-flight tuning cache, so repeat jobs skip re-profiling), and
// advanced through simulated time by a background clock decoupled from wall
// time. With -shards > 1 the shards advance concurrently under a per-tick
// barrier — the daemon's multi-core scaling axis; the event log stays
// bit-identical for a given seed regardless of the worker count. See the
// fleet section of DESIGN.md for the event model and the replayable JSONL
// log format.
//
// Usage:
//
//	bwapd                                   # 2× Machine B fleet on :8080
//	bwapd -machines 8 -machine A -policy bwap -sim-rate 500
//	bwapd -machines 8 -shards 4 -shard-workers 4   # multi-core tick advance
//	bwapd -routing hash-affinity -admission best-bandwidth
//	bwapd -log fleet-events.jsonl           # mirror the event log to disk
//
// Endpoints:
//
//	POST /submit   {"workload":"SC","workers":2,"work_scale":0.05,"count":3}
//	GET  /status?id=1
//	GET  /jobs
//	GET  /fleet
//	GET  /shards
//	GET  /log
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"bwap/internal/fleet"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	machines := flag.Int("machines", 2, "fleet size")
	shards := flag.Int("shards", 1, "shard count (per-shard event loops advanced in parallel)")
	shardWorkers := flag.Int("shard-workers", 0, "goroutines advancing shards (0 = min(shards, GOMAXPROCS))")
	routing := flag.String("routing", fleet.RouteLeastLoaded, "job routing tier: least-loaded, hash-affinity, round-robin")
	admission := flag.String("admission", fleet.AdmitMostFree, "node-selection policy: most-free, best-bandwidth, anti-affinity")
	machine := flag.String("machine", "B", "machine model: A (8-node Opteron), B (4-node Xeon)")
	policy := flag.String("policy", fleet.PolicyBWAP, "placement policy: bwap, first-touch, uniform-all, uniform-workers")
	seed := flag.Uint64("seed", 1, "deterministic seed for engines, probes and arrival noise")
	simRate := flag.Float64("sim-rate", 100, "simulated seconds advanced per wall second")
	probeScale := flag.Float64("probe-scale", fleet.DefaultProbeWorkScale, "tuning-probe work fraction")
	retune := flag.Float64("retune-delay", 0.5, "simulated seconds after churn before co-located jobs are re-tuned (negative disables)")
	logPath := flag.String("log", "", "mirror the JSONL event log to this file")
	flag.Parse()

	var newMachine func(int) *topology.Machine
	switch *machine {
	case "A", "a":
		newMachine = func(int) *topology.Machine { return topology.MachineA() }
	case "B", "b":
		newMachine = func(int) *topology.Machine { return topology.MachineB() }
	default:
		fmt.Fprintf(os.Stderr, "bwapd: unknown machine model %q\n", *machine)
		os.Exit(2)
	}

	cfg := fleet.Config{
		Machines:       *machines,
		Shards:         *shards,
		Workers:        *shardWorkers,
		Routing:        *routing,
		Admission:      *admission,
		NewMachine:     newMachine,
		SimCfg:         sim.Config{Seed: *seed},
		Policy:         *policy,
		RetuneDelay:    *retune,
		Seed:           *seed,
		ProbeWorkScale: *probeScale,
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bwapd: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.LogW = f
	}

	fl, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bwapd: %v\n", err)
		os.Exit(1)
	}
	srv := fleet.NewServer(fl)
	srv.SimRate = *simRate
	srv.Start()
	defer srv.Stop()

	fmt.Printf("bwapd: %d× machine %s fleet (%d shards), policy %s, routing %s, admission %s, listening on %s\n",
		*machines, *machine, *shards, *policy, *routing, *admission, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "bwapd: %v\n", err)
		os.Exit(1)
	}
}
