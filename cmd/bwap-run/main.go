// bwap-run deploys a single benchmark on a simulated machine under a
// chosen page-placement policy and reports completion time, throughput,
// stall rate, migration volume and the final per-node page distribution.
//
// Usage:
//
//	bwap-run -machine A -bench SC -policy bwap -workers 2
//	bwap-run -machine A -bench FT.C -policy uniform-all -workers 1 -cosched
//	bwap-run -machine B -bench SP.B -policy first-touch -workers 1 -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bwap/internal/experiments"
	"bwap/internal/workload"
)

func main() {
	machine := flag.String("machine", "A", "A or B")
	bench := flag.String("bench", "SC", "SC, OC, ON, SP.B or FT.C")
	policyName := flag.String("policy", "bwap", strings.Join(experiments.PolicyNames, ", "))
	workers := flag.Int("workers", 2, "worker-node count (AsymSched picks which nodes)")
	coSched := flag.Bool("cosched", false, "co-schedule Swaptions on the remaining nodes")
	scale := flag.Float64("scale", 0, "override the profile's work-volume scale (0 = profile default)")
	flag.Parse()

	var p *experiments.Profile
	switch strings.ToUpper(*machine) {
	case "A":
		p = experiments.MachineA()
	case "B":
		p = experiments.MachineB()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	if *scale > 0 {
		p.WorkScale = *scale
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ws, err := p.Workers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	r, err := p.Run(spec, ws, *policyName, *coSched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	scenario := "stand-alone"
	if *coSched {
		scenario = "co-scheduled with Swaptions"
	}
	fmt.Printf("%s on %s, %d worker node(s) %v, policy %s (%s)\n",
		spec.Name, p.Name, *workers, ws, *policyName, scenario)
	fmt.Printf("  completion time : %8.2f s\n", r.Time)
	fmt.Printf("  avg stall rate  : %8.3f Gcycles/s\n", r.StallRate/1e9)
	fmt.Printf("  pages migrated  : %8.2f GB\n", r.MigratedGB)
	if *coSched {
		fmt.Printf("  co-runner stall : %8.3f Gcycles/s\n", r.CoRunnerStallRate/1e9)
	}
	if !strings.HasPrefix(*policyName, "bwap") {
		return
	}
	fmt.Printf("  DWP chosen      : %8.0f%% (applied %.0f%%)\n", r.BestDWP*100, r.AppliedDWP*100)
}
