// bwap-experiments regenerates the tables and figures of the BWAP paper's
// evaluation on the simulated machines.
//
// Usage:
//
//	bwap-experiments -all              # everything (minutes)
//	bwap-experiments -fig 1a,2,4       # selected figures
//	bwap-experiments -table 1,2        # selected tables
//	bwap-experiments -fig 2 -quick     # reduced seeds/budgets (seconds)
//
// Output is plain text in the layout of the corresponding paper artifact;
// EXPERIMENTS.md archives a full run and compares it against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bwap/internal/experiments"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figures: 1a,1b,2,3a,3b,3c,3d,4,ovh,abl,dyn,fleet,shards,replay,ff,chaos,obs (beyond-paper fleet scenarios)")
	tables := flag.String("table", "", "comma-separated tables: 1,2")
	all := flag.Bool("all", false, "run every figure and table")
	quick := flag.Bool("quick", false, "reduced seeds, work volumes and search budgets")
	parallel := flag.Int("parallel", 0, "worker pool size for experiment cells (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	experiments.SetMaxParallel(*parallel)

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want["fig"+f] = true
		}
	}
	for _, t := range strings.Split(*tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			want["table"+t] = true
		}
	}
	if *all {
		for _, id := range []string{"fig1a", "fig1b", "table1", "fig2", "fig3a", "fig3b", "fig3c", "fig3d", "table2", "fig4", "figovh", "figabl", "figdyn", "figfleet", "figshards", "figreplay", "figff", "figchaos", "figobs"} {
			want[id] = true
		}
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	machA := experiments.MachineA()
	machB := experiments.MachineB()
	if *quick {
		machA, machB = machA.Quick(), machB.Quick()
	}

	run := func(id string, f func() (fmt.Stringer, error)) {
		if !want[id] {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("fig1a", func() (fmt.Stringer, error) { return asStringer(experiments.RunFig1a(machA).Render()), nil })
	run("fig1b", func() (fmt.Stringer, error) {
		f, err := experiments.RunFig1b(machA)
		return render(f, err)
	})
	run("table1", func() (fmt.Stringer, error) {
		t, err := experiments.RunTable1(machB)
		return render(t, err)
	})
	run("fig2", func() (fmt.Stringer, error) {
		var out strings.Builder
		for i, nw := range []int{1, 2, 4} {
			fig, err := experiments.RunCoScheduled(machA, nw, fmt.Sprintf("Figure 2%c", 'a'+i))
			if err != nil {
				return nil, err
			}
			out.WriteString(fig.Render())
			out.WriteString("\n")
		}
		return asStringer(out.String()), nil
	})
	run("fig3a", func() (fmt.Stringer, error) {
		f, err := experiments.RunCoScheduled(machB, 1, "Figure 3a")
		return render(f, err)
	})
	run("fig3b", func() (fmt.Stringer, error) {
		f, err := experiments.RunCoScheduled(machB, 2, "Figure 3b")
		return render(f, err)
	})
	run("fig3c", func() (fmt.Stringer, error) {
		f, err := experiments.RunStandalone(machA, "Figure 3c")
		return render(f, err)
	})
	run("fig3d", func() (fmt.Stringer, error) {
		f, err := experiments.RunStandalone(machB, "Figure 3d")
		return render(f, err)
	})
	run("table2", func() (fmt.Stringer, error) {
		var out strings.Builder
		ta, err := experiments.RunTable2(machA, []int{1, 2, 4})
		if err != nil {
			return nil, err
		}
		out.WriteString(ta.Render())
		tb, err := experiments.RunTable2(machB, []int{1, 2})
		if err != nil {
			return nil, err
		}
		out.WriteString("\n")
		out.WriteString(tb.Render())
		return asStringer(out.String()), nil
	})
	run("fig4", func() (fmt.Stringer, error) {
		f, err := experiments.RunFig4(machA, []int{1, 2})
		return render(f, err)
	})
	run("figovh", func() (fmt.Stringer, error) {
		o, err := experiments.RunOverhead(machA, 2)
		return render(o, err)
	})
	run("figabl", func() (fmt.Stringer, error) {
		a, err := experiments.RunKernelVsUserAblation(machA, 2)
		return render(a, err)
	})
	run("figdyn", func() (fmt.Stringer, error) {
		d, err := experiments.RunDynamicExtension(machB)
		return render(d, err)
	})
	run("figfleet", func() (fmt.Stringer, error) {
		f, err := experiments.RunFleet(*quick)
		return render(f, err)
	})
	run("figshards", func() (fmt.Stringer, error) {
		s, err := experiments.RunShardScaling(*quick)
		return render(s, err)
	})
	run("figreplay", func() (fmt.Stringer, error) {
		r, err := experiments.RunReplay(*quick)
		return render(r, err)
	})
	run("figff", func() (fmt.Stringer, error) {
		r, err := experiments.RunFastForward(*quick)
		return render(r, err)
	})
	run("figchaos", func() (fmt.Stringer, error) {
		c, err := experiments.RunChaos(*quick)
		return render(c, err)
	})
	run("figobs", func() (fmt.Stringer, error) {
		o, err := experiments.RunObs(*quick)
		return render(o, err)
	})
}

type asStringer string

func (s asStringer) String() string { return string(s) }

type renderer interface{ Render() string }

func render(r renderer, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return asStringer(r.Render()), nil
}
