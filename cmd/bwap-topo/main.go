// bwap-topo prints the simulated NUMA machines: the measured node-to-node
// bandwidth matrix (the Figure 1a view), the synthesized latency matrix,
// the bandwidth amplitude, and the canonical weight distributions BWAP's
// offline tuner derives for representative worker sets.
//
// Usage:
//
//	bwap-topo -machine A
//	bwap-topo -machine B -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bwap/internal/core"
	"bwap/internal/memsys"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

func main() {
	machine := flag.String("machine", "A", "A (8-node Opteron) or B (4-node Xeon CoD)")
	workers := flag.Int("workers", 2, "worker-set size for the canonical weight report")
	flag.Parse()

	var m *topology.Machine
	switch strings.ToUpper(*machine) {
	case "A":
		m = topology.MachineA()
	case "B":
		m = topology.MachineB()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q (want A or B)\n", *machine)
		os.Exit(2)
	}

	fmt.Println(m)
	fmt.Printf("bandwidth amplitude (max/min): %.1fx\n\n", m.BWAmplitude())

	fmt.Println("measured pairwise bandwidth (GB/s), single stream:")
	sys := memsys.New(m, memsys.DefaultConfig())
	printMatrix(sys.MeasuredMatrix(), "%6.1f")

	fmt.Println("\nuncontended latency (ns):")
	n := m.NumNodes()
	lat := make([][]float64, n)
	for s := 0; s < n; s++ {
		lat[s] = make([]float64, n)
		for d := 0; d < n; d++ {
			lat[s][d] = m.LatencyNs(topology.NodeID(s), topology.NodeID(d))
		}
	}
	printMatrix(lat, "%6.0f")

	ws, err := sched.BestWorkerSet(m, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ct := core.NewCanonicalTuner(m, sim.Config{})
	weights, err := ct.Weights(ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nAsymSched worker set for %d node(s): %v\n", *workers, ws)
	fmt.Printf("canonical weights (Eq. 5 over profiled min-BW):\n")
	for i, w := range weights {
		marker := ""
		for _, wn := range ws {
			if topology.NodeID(i) == wn {
				marker = "  <- worker"
			}
		}
		fmt.Printf("  N%d: %6.3f%s\n", i+1, w, marker)
	}
}

func printMatrix(mx [][]float64, cell string) {
	fmt.Print("src\\dst")
	for d := range mx {
		fmt.Printf("   N%-3d", d+1)
	}
	fmt.Println()
	for s, row := range mx {
		fmt.Printf("  N%-4d", s+1)
		for _, v := range row {
			fmt.Printf(" "+cell, v)
		}
		fmt.Println()
	}
}
