// bwap-numactl demonstrates the placement interface the paper adds to
// numactl/libnuma: alongside the stock --interleave, it offers the
// kernel-level --weighted interleave and the new --bw-interleave policy
// that BWAP contributes (Section I: "it enriches the original interface
// with a bw-interleaved policy option that automatically determines memory
// nodes ... and the per-node weights").
//
// It allocates a simulated segment, applies the requested policy, and
// prints the resulting per-node page distribution as a histogram.
//
// Usage:
//
//	bwap-numactl -machine A -interleave 0-3 -size 64
//	bwap-numactl -machine A -weighted 0.4,0.3,0.2,0.1 -size 64
//	bwap-numactl -machine A -bw-interleave 0,1 -dwp 20 -size 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bwap/internal/core"
	"bwap/internal/mm"
	"bwap/internal/numaapi"
	"bwap/internal/sim"
	"bwap/internal/topology"
)

func main() {
	machine := flag.String("machine", "A", "A or B")
	sizeMB := flag.Int("size", 64, "segment size in MiB")
	interleave := flag.String("interleave", "", "uniform interleave over this nodemask (numactl range syntax)")
	weighted := flag.String("weighted", "", "kernel-level weighted interleave: comma-separated per-node weights")
	bwInterleave := flag.String("bw-interleave", "", "BWAP policy: worker nodemask (canonical weights + DWP)")
	dwp := flag.Float64("dwp", 0, "data-to-worker proximity in percent, for -bw-interleave")
	userLevel := flag.Bool("user-level", true, "enforce -bw-interleave via Algorithm 1 (false: kernel weighted interleave)")
	flag.Parse()

	var m *topology.Machine
	switch strings.ToUpper(*machine) {
	case "A":
		m = topology.MachineA()
	case "B":
		m = topology.MachineB()
	default:
		fatalf("unknown machine %q", *machine)
	}

	as := mm.NewAddressSpace(m.NumNodes())
	seg := as.AddSegment("data", uint64(*sizeMB)<<20, mm.SharedOwner)

	switch {
	case *interleave != "":
		mask, err := numaapi.ParseBitmask(*interleave)
		if err != nil {
			fatalf("%v", err)
		}
		if err := numaapi.InterleaveMemory(seg, mask); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("policy: MPOL_INTERLEAVE over nodes %s\n", mask)
	case *weighted != "":
		weights, err := parseWeights(*weighted, m.NumNodes())
		if err != nil {
			fatalf("%v", err)
		}
		if err := numaapi.WeightedInterleaveMemory(seg, weights); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("policy: weighted interleave %v\n", weights)
	case *bwInterleave != "":
		mask, err := numaapi.ParseBitmask(*bwInterleave)
		if err != nil {
			fatalf("%v", err)
		}
		ct := core.NewCanonicalTuner(m, sim.Config{})
		canonical, err := ct.Weights(mask.Nodes())
		if err != nil {
			fatalf("%v", err)
		}
		w, err := core.DWPWeights(canonical, mask.Nodes(), *dwp/100)
		if err != nil {
			fatalf("%v", err)
		}
		if *userLevel {
			err = core.UserLevelWeightedInterleave(seg, w, mm.MoveFlag|mm.StrictFlag)
		} else {
			err = seg.MbindWeighted(w, mm.MoveFlag)
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("policy: bw-interleave, workers %s, DWP %.0f%% (user-level=%v)\n", mask, *dwp, *userLevel)
		fmt.Printf("canonical weights: %s\n", fmtWeights(canonical))
		fmt.Printf("applied weights  : %s\n", fmtWeights(w))
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("\nsegment: %d pages (%d MiB)\n", seg.PageCount(), *sizeMB)
	counts := seg.Counts()
	maxCount := int64(1)
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for n, c := range counts {
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Printf("  N%d %7d pages (%5.1f%%) %s\n", n+1, c, 100*float64(c)/float64(seg.PageCount()), bar)
	}
}

func parseWeights(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("bwap-numactl: %d weights for %d nodes", len(parts), n)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bwap-numactl: bad weight %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func fmtWeights(w []float64) string {
	parts := make([]string, len(w))
	for i, v := range w {
		parts[i] = fmt.Sprintf("%.3f", v)
	}
	return strings.Join(parts, " ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
