// Command bwapvet runs the bwap determinism lint suite (DESIGN.md §13).
//
// It speaks the go vet driver protocol, so the usual invocation is:
//
//	go build -o /tmp/bwapvet ./cmd/bwapvet
//	go vet -vettool=/tmp/bwapvet ./...
//
// and it also runs standalone over package patterns:
//
//	bwapvet ./...                # all analyzers
//	bwapvet -walltime ./...      # just one
//
// Individual analyzers toggle with -walltime, -seededrand, -maporder,
// -lockedio, -frozenorder: naming any analyzer runs only those named;
// -name=false drops one from the full suite.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwap/internal/lint/bwapvet"
)

func main() {
	os.Exit(run())
}

func run() int {
	suite := bwapvet.All()
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = flag.Bool(a.Name, false, "run "+a.Name+": "+a.Doc)
	}
	versionFlag := flag.String("V", "", "print version and exit (driver protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (driver protocol)")
	flag.Parse()

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		return printFlags(suite)
	}

	analyzers := selectAnalyzers(suite, enabled)
	args := flag.Args()

	// The go command invokes the tool once per package with a single
	// JSON .cfg argument describing files and export data.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return bwapvet.RunUnit(args[0], analyzers)
	}

	// Standalone mode: load patterns (test variants included) ourselves.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := bwapvet.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := bwapvet.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 1
		}
	}
	return exit
}

// selectAnalyzers applies vet's flag semantics: naming any analyzer runs
// exactly the named set; otherwise everything not set to false runs.
func selectAnalyzers(suite []*bwapvet.Analyzer, enabled map[string]*bool) []*bwapvet.Analyzer {
	anyExplicit := false
	explicit := make(map[string]bool, len(enabled))
	flag.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			explicit[f.Name] = true
			if *enabled[f.Name] {
				anyExplicit = true
			}
		}
	})
	var out []*bwapvet.Analyzer
	for _, a := range suite {
		if anyExplicit {
			if *enabled[a.Name] {
				out = append(out, a)
			}
		} else if !explicit[a.Name] || *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// printVersion implements the driver's -V=full handshake: the go command
// keys its vet result cache on the reported buildID, so the line must
// change whenever the binary does — a content hash of the executable.
func printVersion(mode string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if mode != "full" {
		fmt.Printf("%s version devel\n", exe)
		return 0
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
	return 0
}

// printFlags implements the driver's -flags handshake: a JSON list of the
// tool's flags so `go vet` can validate which ones it may forward.
func printFlags(suite []*bwapvet.Analyzer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(suite))
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}
