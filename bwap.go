// Package bwap is a faithful, fully simulated reproduction of
// "Bandwidth-Aware Page Placement in NUMA Systems" (Gureya et al.,
// IPDPS 2020).
//
// BWAP places an application's pages across NUMA nodes with *asymmetric
// weighted interleaving*: an offline canonical tuner profiles the machine's
// contended node-to-node bandwidths and computes per-node weights
// (Equations 2/5 of the paper), and an on-line DWP tuner then shifts page
// mass between worker and non-worker nodes by hill-climbing on sampled
// stall rates. Because Go cannot drive mbind(2) or PMU counters portably,
// the machine itself — topology, memory controllers, interconnect
// contention, the virtual-memory system and the performance counters — is
// simulated (see DESIGN.md for the substitution argument); the BWAP
// algorithms run unchanged on top.
//
// # Quick start
//
//	m := bwap.MachineA()                                   // the paper's 8-node Opteron
//	ct := bwap.NewCanonicalTuner(m, bwap.Config{})         // offline profiling stage
//	workers, _ := bwap.BestWorkerSet(m, 2)                 // AsymSched thread placement
//	res, _ := bwap.RunStandalone(m, bwap.Config{}, bwap.Streamcluster(), workers, bwap.NewBWAP(ct))
//	fmt.Println(res.Times["SC"])
//
// The experiments that regenerate every table and figure of the paper live
// in cmd/bwap-experiments; the library pieces are re-exported here so
// downstream users need only this package.
package bwap

import (
	"bwap/internal/core"
	"bwap/internal/fleet"
	"bwap/internal/memsys"
	"bwap/internal/mm"
	"bwap/internal/policy"
	"bwap/internal/sched"
	"bwap/internal/sim"
	"bwap/internal/topology"
	"bwap/internal/workload"
)

// Machine describes a NUMA system: nodes, links, routes, latencies.
type Machine = topology.Machine

// NodeID identifies a NUMA node.
type NodeID = topology.NodeID

// MatrixSpec parameterizes FromMatrix for custom machines.
type MatrixSpec = topology.MatrixSpec

// Spec is a parametric application model (demand, access mix, latency
// sensitivity, scalability).
type Spec = workload.Spec

// Engine is the discrete-time co-scheduling simulator.
type Engine = sim.Engine

// App is one application instance inside an Engine.
type App = sim.App

// Config tunes the simulation engine.
type Config = sim.Config

// Result summarizes a finished run.
type Result = sim.Result

// Placer is a page-placement policy.
type Placer = sim.Placer

// Hook runs every simulated tick (AutoNUMA and the BWAP tuners are hooks).
type Hook = sim.Hook

// CanonicalTuner computes canonical weight distributions per worker set.
type CanonicalTuner = core.CanonicalTuner

// BWAPPolicy is the complete policy (canonical tuner + on-line DWP tuner).
type BWAPPolicy = core.BWAP

// StaticDWP places pages at a fixed proximity factor with no tuning.
type StaticDWP = core.StaticDWP

// Params are the DWP tuner's search parameters (paper: n=20 c=5 t=0.2s x=10%).
type Params = core.Params

// Tuner is the read-side of a running DWP search.
type Tuner = core.Tuner

// Measurement is one completed tuner sampling period.
type Measurement = core.Measurement

// MemConfig tunes the contention model.
type MemConfig = memsys.Config

// Segment is a contiguous mapping with per-page node placement.
type Segment = mm.Segment

// AddressSpace is a simulated process address space.
type AddressSpace = mm.AddressSpace

// MachineA returns the paper's Machine A: 8-node AMD Opteron 6272 with the
// Figure 1a bandwidth matrix (amplitude 5.8x).
func MachineA() *Machine { return topology.MachineA() }

// MachineB returns the paper's Machine B: 4-node Intel Xeon E5-2660 v4 in
// Cluster-on-Die mode (amplitude 2.3x).
func MachineB() *Machine { return topology.MachineB() }

// Symmetric returns an n-node machine with identical remote bandwidths.
func Symmetric(n, coresPerNode int, localGBs, remoteGBs float64) *Machine {
	return topology.Symmetric(n, coresPerNode, localGBs, remoteGBs)
}

// HybridDRAMNVRAM returns a machine with DRAM compute nodes and memory-only
// NVRAM nodes — the paper's Section VI future-work direction. BWAP handles
// it unchanged: the canonical tuner profiles the slow media and weights it
// down.
func HybridDRAMNVRAM(computeNodes, nvramNodes, coresPerNode int, dramGBs, nvramGBs float64) *Machine {
	return topology.HybridDRAMNVRAM(computeNodes, nvramNodes, coresPerNode, dramGBs, nvramGBs)
}

// MemoryIntensive classifies an application by its MAPI (memory accesses
// per instruction) counter — the automation the paper proposes for the
// co-scheduled variant's workload classification. A threshold of 0 selects
// the default.
func MemoryIntensive(app *App, threshold float64) bool {
	return core.MemoryIntensive(app, threshold)
}

// NewPhaseDetector watches an application's MAPI variation and reports
// when it enters its stable phase — the paper's proposed automatic
// BWAP-init trigger. (BWAPPolicy.AutoDetectStablePhase wires it in
// automatically.)
func NewPhaseDetector(app *App) *core.PhaseDetector {
	return core.NewPhaseDetector(app)
}

// FromMatrix builds a machine whose measured pairwise bandwidths reproduce
// the given matrix.
func FromMatrix(spec MatrixSpec) (*Machine, error) { return topology.FromMatrix(spec) }

// Benchmarks returns the paper's five memory-intensive benchmarks
// (SC, OC, ON, SP.B, FT.C), calibrated to Table I.
func Benchmarks() []Spec { return workload.Benchmarks() }

// WorkloadByName returns a benchmark spec by its paper abbreviation
// ("SC", "OC", "ON", "SP.B", "FT.C", "Swaptions").
func WorkloadByName(name string) (Spec, error) { return workload.ByName(name) }

// Streamcluster returns the PARSEC Streamcluster model (the workload of
// Figure 4).
func Streamcluster() Spec { return workload.Streamcluster }

// SwaptionsSpec returns the compute-bound co-runner used by the
// co-scheduled scenarios.
func SwaptionsSpec() Spec { return workload.Swaptions }

// SyntheticWorkload builds a custom streaming workload.
func SyntheticWorkload(name string, readGBs, writeGBs, privateFrac, latencySensitivity float64) Spec {
	return workload.Synthetic(name, readGBs, writeGBs, privateFrac, latencySensitivity)
}

// NewEngine returns a simulation engine for the machine.
func NewEngine(m *Machine, cfg Config) *Engine { return sim.New(m, cfg) }

// NewCanonicalTuner returns the offline profiling stage of BWAP. The
// configuration should match the one used for the actual runs so profiled
// bandwidths see the same contention model.
func NewCanonicalTuner(m *Machine, cfg Config) *CanonicalTuner {
	return core.NewCanonicalTuner(m, cfg)
}

// NewBWAP returns the full policy: canonical weights + on-line DWP tuner,
// enforced with the portable user-level Algorithm 1.
func NewBWAP(ct *CanonicalTuner) *BWAPPolicy { return core.NewBWAP(ct) }

// NewBWAPUniform returns the BWAP-uniform ablation (no canonical tuner;
// the DWP search starts from uniform-all).
func NewBWAPUniform() *BWAPPolicy { return core.NewBWAPUniform() }

// DynamicBWAPPolicy is the Section VI future-work variant: it re-tunes the
// weight distribution whenever the application's access pattern (MAPI)
// shifts, using kernel-level enforcement so pages can migrate both ways.
type DynamicBWAPPolicy = core.DynamicBWAP

// NewDynamicBWAP returns the dynamic re-tuning policy.
func NewDynamicBWAP(ct *CanonicalTuner) *DynamicBWAPPolicy {
	return &core.DynamicBWAP{Canonical: ct}
}

// WorkloadPhase describes one regime of a phase-changing application.
type WorkloadPhase = workload.Phase

// FirstTouch returns the Linux default placement policy.
func FirstTouch() Placer { return policy.FirstTouch{} }

// UniformWorkers returns uniform interleaving across worker nodes (the
// strategy of Carrefour/AsymSched).
func UniformWorkers() Placer { return policy.UniformWorkers{} }

// UniformAll returns uniform interleaving across all nodes.
func UniformAll() Placer { return policy.UniformAll{} }

// AutoNUMA returns the locality-driven balancing policy (one instance per
// engine).
func AutoNUMA() Placer { return &policy.AutoNUMA{} }

// StaticWeighted places all pages by a fixed per-node weight vector.
func StaticWeighted(weights []float64) Placer { return policy.StaticWeighted{Weights: weights} }

// BestWorkerSet picks the k worker nodes with the highest aggregate
// inter-worker bandwidth (the AsymSched deployment rule the paper adopts).
func BestWorkerSet(m *Machine, k int) ([]NodeID, error) { return sched.BestWorkerSet(m, k) }

// RemainingNodes lists the nodes outside the worker set.
func RemainingNodes(m *Machine, workers []NodeID) []NodeID {
	return sched.RemainingNodes(m, workers)
}

// RunStandalone deploys one workload on the worker set under the given
// policy and runs it to completion.
func RunStandalone(m *Machine, cfg Config, spec Spec, workers []NodeID, placer Placer) (*Result, error) {
	e := sim.New(m, cfg)
	if _, err := e.AddApp(spec.Name, spec, workers, placer); err != nil {
		return nil, err
	}
	return e.Run()
}

// RunCoScheduled deploys a high-priority workload on the nodes outside the
// worker set (placed first-touch, as the paper's latency-sensitive app
// does) and the best-effort workload on the workers under the given
// policy. If the policy is a BWAPPolicy, its co-scheduled two-stage tuner
// is engaged automatically.
func RunCoScheduled(m *Machine, cfg Config, hi, best Spec, workers []NodeID, placer Placer) (*Result, error) {
	e := sim.New(m, cfg)
	rest := sched.RemainingNodes(m, workers)
	if len(rest) == 0 {
		return nil, errNoRoomForCoRunner
	}
	if _, err := e.AddApp(hi.Name, hi, rest, policy.FirstTouch{}); err != nil {
		return nil, err
	}
	if b, ok := placer.(*core.BWAP); ok {
		b.CoRunner = hi.Name
	}
	if _, err := e.AddApp(best.Name, best, workers, placer); err != nil {
		return nil, err
	}
	return e.Run()
}

// Fleet is the discrete-event job-stream scheduler over a set of simulated
// NUMA machines — the service layer above single-run engines. See
// internal/fleet and the DESIGN.md fleet section.
type Fleet = fleet.Fleet

// FleetConfig parameterizes a fleet (machines, policy, seed, cache).
type FleetConfig = fleet.Config

// FleetJob is one scheduled unit of a fleet's job stream.
type FleetJob = fleet.Job

// FleetStats summarizes a fleet's throughput, latency, utilization and
// tuning-cache economics.
type FleetStats = fleet.Stats

// FleetShardStat is one shard's slice of the fleet counters (the daemon's
// /shards endpoint).
type FleetShardStat = fleet.ShardStat

// FleetAdmissionPolicy picks a job's worker-node set on the admitting
// machine; select one by name via FleetConfig.Admission.
type FleetAdmissionPolicy = fleet.AdmissionPolicy

// FleetRouting assigns admission attempts to shards; select one by name
// via FleetConfig.Routing.
type FleetRouting = fleet.Routing

// Routing and admission policy names for FleetConfig.
const (
	FleetRouteLeastLoaded  = fleet.RouteLeastLoaded
	FleetRouteHashAffinity = fleet.RouteHashAffinity
	FleetRouteRoundRobin   = fleet.RouteRoundRobin

	FleetAdmitMostFree      = fleet.AdmitMostFree
	FleetAdmitBestBandwidth = fleet.AdmitBestBandwidth
	FleetAdmitAntiAffinity  = fleet.AdmitAntiAffinity
)

// FleetRecord is one line of the fleet's replayable JSONL event log.
type FleetRecord = fleet.Record

// FleetServer serves a fleet over HTTP (the bwapd daemon).
type FleetServer = fleet.Server

// FleetObserver is the fleet's deterministic telemetry layer: sim-time
// counters, histograms, a windowed timeline and optional lifecycle spans,
// fed purely by the event-record stream so attaching one never changes
// the event log.
type FleetObserver = fleet.Observer

// FleetObserverConfig parameterizes a FleetObserver (timeline window,
// ring size, optional Chrome trace-event span sink).
type FleetObserverConfig = fleet.ObserverConfig

// StreamSpec is one workload class of a fleet job stream: a spec plus an
// arrival process.
type StreamSpec = fleet.StreamSpec

// ArrivalSpec describes a deterministic arrival process (periodic or
// Poisson) for a job stream.
type ArrivalSpec = workload.ArrivalSpec

// TuningCache memoizes BWAP placement decisions across jobs, keyed by
// (topology fingerprint × workload signature × worker count × co-runner
// count), with single-flight probing. It is durable (Save/LoadInto a
// versioned snapshot file) and optionally LRU-bounded.
type TuningCache = fleet.TuningCache

// TuningCacheOption configures a TuningCache at construction.
type TuningCacheOption = fleet.TuningCacheOption

// TuningCacheStats is the cache's cumulative accounting (misses = probe
// runs; restored = entries loaded from a snapshot).
type TuningCacheStats = fleet.TuningCacheStats

// NewFleet builds a fleet of simulated NUMA machines serving a job stream.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewFleetServer wraps a fleet in the bwapd HTTP API.
func NewFleetServer(f *Fleet) *FleetServer { return fleet.NewServer(f) }

// NewFleetObserver builds a telemetry observer; attach it to one fleet
// via FleetConfig.Obs.
func NewFleetObserver(cfg FleetObserverConfig) *FleetObserver { return fleet.NewObserver(cfg) }

// NewTuningCache returns a tuning cache shareable across fleets and
// daemons. By default failed probes are forgotten (retried on the next
// lookup) and the cache is unbounded; see CacheMaxEntries and CacheErrors.
func NewTuningCache(simCfg Config, probeScale float64, seed uint64, opts ...TuningCacheOption) *TuningCache {
	return fleet.NewTuningCache(simCfg, probeScale, seed, opts...)
}

// CacheMaxEntries bounds a tuning cache's placement entries with LRU
// eviction (n <= 0 keeps it unbounded).
func CacheMaxEntries(n int) TuningCacheOption { return fleet.CacheMaxEntries(n) }

// CacheErrors memoizes failed probes forever — the strict first-outcome-
// is-the-outcome behaviour replay determinism wants.
func CacheErrors() TuningCacheOption { return fleet.CacheErrors() }

// ProbeWorkers sizes the cache's speculative probe pool: n > 0 allows n
// concurrent background probes, n == 0 defaults to GOMAXPROCS, n < 0
// disables prefetching (probes run synchronously at admission). The pool
// width never changes any demand-side observable — logs, stats and
// metrics are byte-identical at every setting.
func ProbeWorkers(n int) TuningCacheOption { return fleet.ProbeWorkers(n) }

// DecodeFleetLog parses a fleet's JSONL event log for replay verification.
func DecodeFleetLog(data []byte) ([]FleetRecord, error) { return fleet.DecodeLog(data) }

// TraceArrival builds the arrival spec that replays explicit recorded
// timestamps verbatim — the trace-driven stream source.
func TraceArrival(times []float64) ArrivalSpec { return workload.TraceArrival(times) }

// ReadFleetTrace parses a fleet's JSONL event log back into trace-driven
// stream specs, so a recorded stream can be resubmitted and replayed.
// resolve maps workload names to specs; nil selects WorkloadByName.
func ReadFleetTrace(data []byte, resolve func(name string) (Spec, error)) ([]StreamSpec, error) {
	return fleet.ReadTrace(data, resolve)
}

type coRunnerError string

func (e coRunnerError) Error() string { return string(e) }

const errNoRoomForCoRunner = coRunnerError("bwap: worker set covers the whole machine; no nodes left for the co-runner")
